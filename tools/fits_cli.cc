/**
 * @file
 * `fits` — command-line driver over the library, for working with
 * firmware images on disk:
 *
 *   fits gen <out.fwimg> [--vendor V] [--seed N] [--keep-symbols]
 *       Generate a synthetic firmware sample (plus a ground-truth
 *       sidecar <out.fwimg.truth> for scoring).
 *   fits info <image.fwimg>
 *       Unpack and describe: file system, selected network binary,
 *       imports, anchors.
 *   fits rank <image.fwimg> [--top N] [--use-symbols]
 *       Run the FITS pipeline and print the ITS ranking.
 *   fits taint <image.fwimg> [--engine sta|karonte] [--its ADDR]...
 *       Run a taint engine with the classical sources plus any given
 *       intermediate sources and print the alerts.
 *   fits corpus [--jobs N] [--taint] [--dir DIR]
 *               [--metrics-out FILE] [--no-cache]
 *       Evaluate the standard 59-sample corpus in parallel (per-vendor
 *       precision; with --taint also the four engine configurations,
 *       from one shared analysis pass per sample). --dir evaluates
 *       every *.fwimg under DIR instead of the synthetic corpus;
 *       --metrics-out enables the fits::obs registry and writes its
 *       JSON snapshot after the run; --no-cache disables the analysis
 *       cache (results are identical either way — set FITS_CACHE_DIR
 *       to persist the cache across invocations). Exits non-zero when
 *       every sample fails.
 *   fits serve --socket PATH [--jobs N] [--queue-limit N]
 *              [--request-timeout-ms MS] [--metrics-out FILE]
 *       Run the resident analysis service on a unix-domain socket:
 *       N clients share one process-wide analysis cache, so repeated
 *       or overlapping requests reuse lifted images and behavior
 *       bundles. SIGTERM/SIGINT drain gracefully (stop accepting,
 *       finish in-flight requests, flush metrics).
 *   fits client --socket PATH <op> [args]
 *       Submit one request to a running `fits serve` and print the
 *       same tables the one-shot commands print (ops: ping, rank,
 *       taint, corpus, metrics, shutdown). Retries automatically when
 *       the server sheds load.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/program_analysis.hh"
#include "cache/cache.hh"
#include "chaos/chaos.hh"
#include "core/anchors.hh"
#include "core/pipeline.hh"
#include "eval/report.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/printer.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace {

using namespace fits;
namespace wire = fits::serve::wire;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  fits gen <out.fwimg> [--vendor NETGEAR|D-Link|TP-Link|"
        "Tenda|Cisco]\n"
        "           [--seed N] [--keep-symbols]\n"
        "  fits info <image.fwimg>\n"
        "  fits rank <image.fwimg> [--top N] [--use-symbols]\n"
        "  fits taint <image.fwimg> [--engine sta|karonte] "
        "[--its ADDR]...\n"
        "  fits disasm <image.fwimg> <function-addr>\n"
        "  fits score <image.fwimg>   (needs <image>.truth sidecar)\n"
        "  fits corpus [--jobs N] [--taint] [--dir DIR] "
        "[--metrics-out FILE] [--no-cache]\n"
        "              (FITS_JOBS also sets N; FITS_CACHE_DIR "
        "persists the analysis cache;\n"
        "              exits 1 when every sample fails)\n"
        "  fits serve --socket PATH [--jobs N] [--queue-limit N] "
        "[--request-timeout-ms MS]\n"
        "             [--metrics-out FILE]\n"
        "              (resident analysis service; SIGTERM drains "
        "gracefully)\n"
        "  fits client --socket PATH "
        "<ping|rank|taint|corpus|metrics|shutdown> [args]\n"
        "              (submit one request to a running `fits serve`; "
        "same args as the\n"
        "              one-shot commands, same tables out)\n"
        "  fits faults   (list fault-injection sites; arm with "
        "FITS_FAULTS=<spec>[:<seed>])\n"
        "env: FITS_STAGE_TIMEOUT_MS bounds each cooperative pipeline "
        "stage\n");
    return 2;
}

int
cmdFaults()
{
    std::printf("fault-injection sites (arm with "
                "FITS_FAULTS=<rules>[:<seed>], e.g.\n"
                "FITS_FAULTS='unpack.*@25,taint.sta:7'; rules are "
                "site[@percent][#max-fires],\n"
                "'*' is a trailing glob):\n\n");
    std::printf("  %-16s %-10s %s\n", "site", "stage", "effect");
    for (const auto &site : chaos::knownSites()) {
        std::printf("  %-16s %-10s %s\n", site.name,
                    support::stageName(site.stage), site.description);
    }
    return 0;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

/** Read an image argument, or print WHY it cannot be read (missing,
 * a directory, unreadable) to stderr and return false. */
bool
readImageArg(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        std::fprintf(stderr, "cannot read %s: no such file\n",
                     path.c_str());
        return false;
    }
    if (st.type() == fs::file_type::directory) {
        std::fprintf(stderr,
                     "cannot read %s: is a directory "
                     "(expected a .fwimg file)\n",
                     path.c_str());
        return false;
    }
    if (!readFile(path, bytes)) {
        std::fprintf(stderr, "cannot read %s: open failed "
                             "(permissions?)\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

synth::VendorProfile
profileByName(const std::string &vendor)
{
    if (vendor == "D-Link")
        return synth::dlinkProfile();
    if (vendor == "TP-Link")
        return synth::tplinkProfile();
    if (vendor == "Tenda")
        return synth::tendaProfile();
    if (vendor == "Cisco")
        return synth::ciscoProfile();
    return synth::netgearProfile();
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const std::string out = argv[0];
    std::string vendor = "NETGEAR";
    std::uint64_t seed = 1;
    bool keepSymbols = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--vendor" && i + 1 < argc) {
            vendor = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--keep-symbols") {
            keepSymbols = true;
        } else {
            return usage();
        }
    }

    synth::SampleSpec spec;
    spec.profile = profileByName(vendor);
    spec.product = spec.profile.series.front();
    spec.version = support::format("V1.0.%llu",
                                   static_cast<unsigned long long>(
                                       seed % 100));
    spec.name = spec.product + "-" + spec.version;
    spec.seed = seed;
    spec.keepSymbols = keepSymbols;

    const auto firmware = synth::generateFirmware(spec);
    if (!writeFile(out, firmware.bytes)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    // Ground-truth sidecar for scoring tools.
    std::ofstream truth(out + ".truth");
    truth << "# ground truth for " << spec.name << "\n";
    for (ir::Addr its : firmware.truth.itsFunctions)
        truth << "its " << support::hex(its) << "\n";
    for (const auto &site : firmware.truth.sinkSites) {
        truth << "sink " << support::hex(site.addr) << " "
              << synth::siteClassName(site.cls) << " "
              << synth::flowKindName(site.flow) << " "
              << site.sinkName << "\n";
    }

    std::printf("wrote %s (%zu bytes, %s %s, %zu planted bugs) and "
                "%s.truth\n",
                out.c_str(), firmware.bytes.size(), vendor.c_str(),
                spec.name.c_str(), firmware.truth.bugCount(),
                out.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        std::fprintf(stderr, "unpack failed: %s\n",
                     unpacked.errorMessage().c_str());
        return 1;
    }
    const auto &image = unpacked.value();
    std::printf("vendor:  %s\nproduct: %s %s\nencoding: %s\n",
                image.info.vendor.c_str(),
                image.info.product.c_str(),
                image.info.version.c_str(),
                fw::encodingName(image.info.encoding));
    std::printf("file system (%zu files, %zu bytes):\n",
                image.filesystem.size(),
                image.filesystem.totalBytes());
    for (const auto &file : image.filesystem.files()) {
        std::printf("  %-24s %-10s %7zu bytes\n", file.path.c_str(),
                    fw::fileTypeName(file.type), file.bytes.size());
    }

    auto target = fw::selectAnalysisTarget(image.filesystem);
    if (!target) {
        std::printf("no analyzable network binary: %s\n",
                    target.errorMessage().c_str());
        return 0;
    }
    const auto &main = *target.value().main;
    std::printf("\nnetwork binary: %s (%s, %zu functions, "
                "stripped: %s)\n",
                main.name.c_str(), bin::archName(main.arch),
                main.program.size(), main.stripped ? "yes" : "no");
    std::printf("imports (%zu):", main.imports.size());
    for (const auto &imp : main.imports) {
        std::printf(" %s%s", imp.name.c_str(),
                    core::isAnchorName(imp.name) ? "*" : "");
    }
    std::printf("   (* = anchor)\n");
    return 0;
}

int
cmdRank(const std::string &path, int argc, char **argv)
{
    std::size_t top = 10;
    bool useSymbols = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--use-symbols") {
            useSymbols = true;
        } else {
            return usage();
        }
    }

    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    const auto report = eval::runRankReport(bytes, top, useSymbols);
    if (!report.ok) {
        std::fputs(report.error.c_str(), stderr);
        return 1;
    }
    std::fputs(report.text.c_str(), stdout);
    return 0;
}

int
cmdTaint(const std::string &path, int argc, char **argv)
{
    std::string engine = "sta";
    std::vector<ir::Addr> itsAddrs;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--its" && i + 1 < argc) {
            itsAddrs.push_back(
                std::strtoull(argv[++i], nullptr, 0));
        } else {
            return usage();
        }
    }
    if (engine != "sta" && engine != "karonte")
        return usage();

    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    const auto report = eval::runTaintReport(bytes, engine, itsAddrs);
    if (!report.ok) {
        std::fputs(report.error.c_str(), stderr);
        return 1;
    }
    std::fputs(report.text.c_str(), stdout);
    return 0;
}

int
cmdScore(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    // Parse the ground-truth sidecar.
    std::ifstream truthIn(path + ".truth");
    if (!truthIn) {
        std::fprintf(stderr, "cannot read %s.truth\n", path.c_str());
        return 1;
    }
    std::vector<ir::Addr> itsAddrs;
    std::vector<std::pair<ir::Addr, bool>> sites; // (addr, isBug)
    std::string line;
    while (std::getline(truthIn, line)) {
        const auto fields = support::split(line, ' ');
        if (fields.size() >= 2 && fields[0] == "its") {
            itsAddrs.push_back(
                std::strtoull(fields[1].c_str(), nullptr, 0));
        } else if (fields.size() >= 3 && fields[0] == "sink") {
            sites.emplace_back(
                std::strtoull(fields[1].c_str(), nullptr, 0),
                fields[2] == "real-bug");
        }
    }

    const core::FitsPipeline pipeline;
    const auto result = pipeline.run(bytes);
    if (!result.ok) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.error.c_str());
        return 1;
    }

    // Rank of the first true ITS.
    int rank = -1;
    std::vector<taint::TaintSource> verified =
        taint::classicalTaintSources();
    for (std::size_t i = 0; i < result.inference.ranking.size();
         ++i) {
        const ir::Addr entry = result.inference.ranking[i].entry;
        const bool isIts =
            std::find(itsAddrs.begin(), itsAddrs.end(), entry) !=
            itsAddrs.end();
        if (isIts && rank < 0)
            rank = static_cast<int>(i) + 1;
        if (isIts && i < 3) {
            verified.push_back(
                taint::TaintSource::its(entry,
                                        support::hex(entry)));
        }
    }
    std::printf("ITS rank: %d (top-3 %s)\n", rank,
                rank >= 1 && rank <= 3 ? "hit" : "miss");

    // Taint with the verified top-3 ITSs; score against the sidecar.
    auto unpacked = fw::unpackFirmware(bytes);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const auto report = taint::StaEngine().run(pa, verified);
    const auto alerts = report.filteredAlerts();
    std::size_t tp = 0, fp = 0;
    for (const auto &alert : alerts) {
        bool bug = false;
        for (const auto &[addr, isBug] : sites) {
            if (addr == alert.sinkSite && isBug)
                bug = true;
        }
        bug ? ++tp : ++fp;
    }
    std::size_t plantedBugs = 0;
    for (const auto &[addr, isBug] : sites)
        plantedBugs += isBug ? 1 : 0;
    std::printf("STA-ITS: %zu alerts, %zu true positives, %zu false "
                "positives\n",
                alerts.size(), tp, fp);
    std::printf("planted bugs: %zu, recall %.0f%%\n", plantedBugs,
                plantedBugs == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(tp) /
                          static_cast<double>(plantedBugs));
    return 0;
}

int
cmdDisasm(const std::string &path, const std::string &addrText)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        std::fprintf(stderr, "unpack failed: %s\n",
                     unpacked.errorMessage().c_str());
        return 1;
    }
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    if (!target) {
        std::fprintf(stderr, "selection failed: %s\n",
                     target.errorMessage().c_str());
        return 1;
    }
    const ir::Addr addr = std::strtoull(addrText.c_str(), nullptr, 0);
    const ir::Function *fn =
        target.value().main->program.functionAt(addr);
    if (fn == nullptr)
        fn = target.value().main->program.functionContaining(addr);
    if (fn == nullptr) {
        std::fprintf(stderr, "no function at %s\n",
                     support::hex(addr).c_str());
        return 1;
    }
    std::fputs(ir::printFunction(*fn).c_str(), stdout);
    return 0;
}

int
cmdCorpus(int argc, char **argv)
{
    eval::CorpusOptions options;
    std::string metricsOut;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--taint") {
            options.taint = true;
        } else if (arg == "--no-cache") {
            options.cache = false;
        } else if (arg == "--dir" && i + 1 < argc) {
            options.dir = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metricsOut = argv[++i];
        } else {
            return usage();
        }
    }

    if (!metricsOut.empty())
        obs::setEnabled(true);
    if (!options.cache) {
        // Turn off every tier, including the in-process one the
        // pipeline uses for per-image analyses.
        cache::Options off;
        off.memory = false;
        off.disk = false;
        cache::configure(off);
    }
    cache::resetStats();

    // Print the header eagerly (before the long evaluation) so the
    // one-shot tool still shows progress.
    options.onHeader = [](const std::string &header) {
        std::fputs(header.c_str(), stdout);
        std::fflush(stdout);
    };
    const eval::CorpusReport report = eval::runCorpusReport(options);
    if (!report.ok) {
        std::fputs(report.error.c_str(), stderr);
        return 1;
    }
    std::fputs(report.diagnostics.c_str(), stderr);
    std::fputs(report.text.c_str(), stdout);
    std::fputs(
        eval::renderWallClock(report.wallMs, report.jobs).c_str(),
        stdout);
    std::fputs(eval::renderCacheSummary().c_str(), stdout);

    if (!metricsOut.empty()) {
        if (obs::Registry::instance().exportToFile(metricsOut)) {
            std::printf("metrics written to %s\n", metricsOut.c_str());
        } else {
            std::fprintf(stderr, "cannot write metrics to %s\n",
                         metricsOut.c_str());
            return 1;
        }
    }

    return report.exitCode();
}

std::atomic<serve::Server *> g_server{nullptr};

extern "C" void
handleDrainSignal(int)
{
    serve::Server *server = g_server.load();
    if (server != nullptr)
        server->beginDrain(); // async-signal-safe: atomics + write()
}

int
cmdServe(int argc, char **argv)
{
    serve::ServerConfig config;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            config.socketPath = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            config.jobs = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--queue-limit" && i + 1 < argc) {
            config.queueLimit = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--request-timeout-ms" && i + 1 < argc) {
            config.requestTimeoutMs =
                std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            config.metricsOut = argv[++i];
        } else {
            return usage();
        }
    }
    if (config.socketPath.empty())
        return usage();
    if (!config.metricsOut.empty())
        obs::setEnabled(true);

    serve::Server server(config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    g_server.store(&server);
    std::signal(SIGTERM, handleDrainSignal);
    std::signal(SIGINT, handleDrainSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("fits serve: listening on %s "
                "(%zu workers, queue limit %zu)\n",
                config.socketPath.c_str(), server.workerCount(),
                config.queueLimit);
    std::fflush(stdout);

    server.waitUntilDrained();
    g_server.store(nullptr);
    std::printf("fits serve: drained (%zu requests served, "
                "%zu rejected)\n",
                server.requestsServed(), server.requestsRejected());
    return 0;
}

/** Print one client response the way the matching one-shot command
 * would (tables to stdout, diagnostics to stderr), and map its status
 * to a process exit code. */
int
printClientResponse(const std::string &op, const wire::Value &resp)
{
    const std::string status = resp.getString("status", "");
    if (status == "error" || status == "draining") {
        std::fputs(resp.getString("error", "request failed\n").c_str(),
                   stderr);
        return 1;
    }

    if (op == "rank" || op == "taint") {
        std::fputs(resp.getString("output", "").c_str(), stdout);
        return 0;
    }
    if (op == "corpus") {
        std::fputs(resp.getString("diagnostics", "").c_str(), stderr);
        std::fputs(resp.getString("output", "").c_str(), stdout);
        std::fputs(eval::renderWallClock(
                       resp.getNumber("wall_ms", 0.0),
                       static_cast<std::size_t>(
                           resp.getInt("jobs", 0)))
                       .c_str(),
                   stdout);
        std::fputs(resp.getString("cache", "").c_str(), stdout);
        return static_cast<int>(resp.getInt("exit", 0));
    }
    // ping / infer / metrics / shutdown: machine-readable JSON.
    std::printf("%s\n", resp.toJson().c_str());
    return 0;
}

int
cmdClient(int argc, char **argv)
{
    std::string socketPath;
    int i = 0;
    while (i < argc && argv[i][0] == '-') {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socketPath = argv[i + 1];
            i += 2;
        } else {
            return usage();
        }
    }
    if (socketPath.empty() || i >= argc)
        return usage();
    const std::string op = argv[i++];

    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string(op));
    if (op == "rank" || op == "taint" || op == "infer") {
        if (i >= argc)
            return usage();
        request.set("path", wire::Value::string(argv[i++]));
    }
    wire::Value itsArr = wire::Value::array();
    bool hasIts = false;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            request.set("top",
                        wire::Value::integer(std::strtoll(
                            argv[++i], nullptr, 0)));
        } else if (arg == "--use-symbols") {
            request.set("use_symbols", wire::Value::boolean(true));
        } else if (arg == "--engine" && i + 1 < argc) {
            request.set("engine", wire::Value::string(argv[++i]));
        } else if (arg == "--its" && i + 1 < argc) {
            itsArr.push(wire::Value::integer(static_cast<std::int64_t>(
                std::strtoull(argv[++i], nullptr, 0))));
            hasIts = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            request.set("jobs",
                        wire::Value::integer(std::strtoll(
                            argv[++i], nullptr, 0)));
        } else if (arg == "--taint") {
            request.set("taint", wire::Value::boolean(true));
        } else if (arg == "--no-cache") {
            request.set("cache", wire::Value::boolean(false));
        } else if (arg == "--dir" && i + 1 < argc) {
            request.set("dir", wire::Value::string(argv[++i]));
        } else {
            return usage();
        }
    }
    if (hasIts)
        request.set("its", std::move(itsArr));

    serve::Client client;
    std::string error;
    if (!client.connect(socketPath, &error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        return 1;
    }
    wire::Value response;
    if (!client.submit(request, &response, &error)) {
        std::fprintf(stderr, "client: %s\n", error.c_str());
        return 1;
    }
    return printClientResponse(op, response);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "corpus")
        return cmdCorpus(argc - 2, argv + 2);
    if (command == "serve")
        return cmdServe(argc - 2, argv + 2);
    if (command == "client")
        return cmdClient(argc - 2, argv + 2);
    if (command == "faults")
        return cmdFaults();
    if (argc < 3)
        return usage();
    if (command == "gen")
        return cmdGen(argc - 2, argv + 2);
    if (command == "info")
        return cmdInfo(argv[2]);
    if (command == "rank")
        return cmdRank(argv[2], argc - 3, argv + 3);
    if (command == "taint")
        return cmdTaint(argv[2], argc - 3, argv + 3);
    if (command == "disasm" && argc >= 4)
        return cmdDisasm(argv[2], argv[3]);
    if (command == "score")
        return cmdScore(argv[2]);
    return usage();
}
