#!/bin/sh
# clang-format check against the committed .clang-format.
#
# Policy: formatting is ENFORCED (non-zero exit) on the files a change
# touches, and ADVISORY (report, exit zero) on the rest of the tree —
# pre-existing drift never blocks an unrelated PR, but a PR cannot add
# new drift.
#
# Usage:
#   tools/check_format.sh FILE...      enforce on exactly these files
#   FITS_FORMAT_BASE=<ref> tools/check_format.sh
#                                      enforce on files changed vs ref
#                                      (what CI uses), advise on rest
#   tools/check_format.sh              advisory pass over the tree
#
# Exits 0 with a notice when clang-format is not installed — the
# sanitizer and test gates do not depend on a formatter being present.
set -e

. "$(dirname "$0")/lib.sh"
cd "$FITS_ROOT"

if ! command -v clang-format > /dev/null 2>&1; then
    echo "format: clang-format not installed; skipping (advisory)"
    exit 0
fi

# The C++ sources under version control.
tracked_sources() {
    git ls-files '*.cc' '*.hh'
}

# Files to enforce strictly: explicit args win; otherwise the
# git-diff against FITS_FORMAT_BASE (when set).
strict_list() {
    if [ "$#" -gt 0 ]; then
        printf '%s\n' "$@"
    elif [ -n "${FITS_FORMAT_BASE:-}" ]; then
        git diff --name-only --diff-filter=ACMR \
            "$FITS_FORMAT_BASE" -- '*.cc' '*.hh'
    fi
}

STRICT=$(strict_list "$@" | sort -u)
FAILED=0
if [ -n "$STRICT" ]; then
    for f in $STRICT; do
        [ -f "$f" ] || continue
        if ! clang-format --dry-run --Werror "$f" 2> /dev/null; then
            echo "format: $f needs clang-format" >&2
            FAILED=1
        fi
    done
fi

# Advisory sweep over everything else: count drift, never fail on it.
DRIFT=0
for f in $(tracked_sources); do
    case "
$STRICT
" in
    *"
$f
"*) continue ;;
    esac
    if ! clang-format --dry-run --Werror "$f" > /dev/null 2>&1; then
        DRIFT=$((DRIFT + 1))
    fi
done
if [ "$DRIFT" -gt 0 ]; then
    echo "format: $DRIFT pre-existing file(s) drift from .clang-format (advisory)"
else
    echo "format: tree matches .clang-format"
fi

if [ "$FAILED" -ne 0 ]; then
    echo "format: run clang-format -i on the files above" >&2
    exit 1
fi
echo "format: ok"
