#!/bin/sh
# Build the test suite under ThreadSanitizer and run the concurrency
# tests with several workers. Any data race fails the run (TSan exits
# non-zero via halt_on_error handling of its report count).
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -e

. "$(dirname "$0")/lib.sh"
BUILD=${1:-"$FITS_ROOT/build-tsan"}

fits_sanitized_tests "$BUILD" thread

# Exercise the parallel machinery specifically: the thread pool, the
# corpus runner fan-out, the parallel BFV stage, the logger, and the
# metrics registry (concurrent instrument updates + snapshots).
TSAN_OPTIONS="halt_on_error=1" FITS_JOBS=4 "$BUILD/tests/fits_tests" \
    --gtest_filter='ThreadPool.*:ParallelFor.*:ResolveJobs.*:CorpusRunner.*:BehaviorAnalyzer.*:Logger.*:Obs*'

# The chaos registry is lock-free (relaxed atomic counters read by
# concurrent pipeline workers); run the injection sweep under TSan to
# prove arming faults does not introduce races into the fan-out.
TSAN_OPTIONS="halt_on_error=1" FITS_JOBS=4 "$BUILD/tests/fits_tests" \
    --gtest_filter='ChaosTest.*'

# The analysis cache is shared mutable state under the fan-out:
# single-flight futures, LRU accounting, and stat counters all see
# concurrent workers in the parallel-ranking tests.
TSAN_OPTIONS="halt_on_error=1" FITS_JOBS=4 "$BUILD/tests/fits_tests" \
    --gtest_filter='CacheTest.*'

# The `fits serve` daemon multiplexes connection reader threads, the
# worker pool, admission accounting, and the drain sequence; the serve
# suite's concurrent-client and drain tests are the proof they hold
# under TSan.
TSAN_OPTIONS="halt_on_error=1" FITS_JOBS=4 "$BUILD/tests/fits_tests" \
    --gtest_filter='Serve*'

echo "tsan: no data races detected"
