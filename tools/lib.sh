# Shared plumbing for the tools/check_*.sh scripts. POSIX sh.
#
# Source it from a sibling script:
#
#     . "$(dirname "$0")/lib.sh"
#
# Provides:
#   FITS_ROOT                  absolute repo root
#   fits_abspath PATH          absolutize PATH against the caller's cwd
#   fits_jobs                  parallel job count (FITS_BUILD_JOBS
#                              overrides; falls back to nproc, then 4)
#   fits_configure BUILD ...   cmake configure with extra args
#   fits_build BUILD TARGET... build targets with the shared job count
#   fits_ctest BUILD ...       run ctest in BUILD with standard flags
#   fits_sanitized_tests BUILD KIND
#                              configure + build fits_tests under
#                              FITS_SANITIZE=KIND (RelWithDebInfo)

FITS_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# Build-dir arguments may be relative; scripts that cd (or run tools
# in subshells) must pin them to the invoking directory first.
fits_abspath() {
    case "$1" in
    /*) printf '%s\n' "$1" ;;
    *) printf '%s/%s\n' "$(pwd)" "$1" ;;
    esac
}

fits_jobs() {
    if [ -n "${FITS_BUILD_JOBS:-}" ]; then
        echo "$FITS_BUILD_JOBS"
    elif command -v nproc > /dev/null 2>&1; then
        nproc
    else
        echo 4
    fi
}

fits_configure() {
    _fits_build_dir=$1
    shift
    cmake -B "$_fits_build_dir" -S "$FITS_ROOT" "$@"
}

fits_build() {
    _fits_build_dir=$1
    shift
    cmake --build "$_fits_build_dir" --target "$@" -j "$(fits_jobs)"
}

fits_ctest() {
    _fits_build_dir=$1
    shift
    ctest --test-dir "$_fits_build_dir" --output-on-failure \
        -j "$(fits_jobs)" "$@"
}

fits_sanitized_tests() {
    fits_configure "$1" -DFITS_SANITIZE="$2" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    fits_build "$1" fits_tests
}
