#!/bin/sh
# Structural validation of the GitHub Actions workflows — an
# actionlint-equivalent that runs offline with only python3 + PyYAML
# (both part of the standard toolchain image): every workflow must
# parse as YAML and carry the fields Actions requires (name/on/jobs;
# per job runs-on + steps; per step run or uses). Wired into ctest so
# a malformed workflow fails the same gate it configures.
#
# Usage: tools/check_ci.sh [workflow-dir]
set -e

. "$(dirname "$0")/lib.sh"
WORKFLOWS=${1:-"$FITS_ROOT/.github/workflows"}

if ! command -v python3 > /dev/null 2>&1; then
    echo "ci-lint: python3 not available; skipping"
    exit 0
fi

python3 - "$WORKFLOWS" <<'EOF'
import glob, os, sys

try:
    import yaml
except ImportError:
    print("ci-lint: PyYAML not available; skipping")
    sys.exit(0)

workflows = sorted(
    glob.glob(os.path.join(sys.argv[1], "*.yml"))
    + glob.glob(os.path.join(sys.argv[1], "*.yaml")))
if not workflows:
    print(f"ci-lint: no workflows under {sys.argv[1]}", file=sys.stderr)
    sys.exit(1)

errors = []


def err(path, msg):
    errors.append(f"{os.path.basename(path)}: {msg}")


for path in workflows:
    try:
        doc = yaml.safe_load(open(path))
    except yaml.YAMLError as e:
        err(path, f"YAML parse error: {e}")
        continue
    if not isinstance(doc, dict):
        err(path, "top level is not a mapping")
        continue
    if "name" not in doc:
        err(path, "missing top-level 'name'")
    # YAML 1.1 parses a bare `on:` key as boolean True.
    if "on" not in doc and True not in doc:
        err(path, "missing top-level 'on' trigger")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict) or not jobs:
        err(path, "missing or empty 'jobs'")
        continue
    for job_id, job in jobs.items():
        if not isinstance(job, dict):
            err(path, f"job '{job_id}' is not a mapping")
            continue
        if "runs-on" not in job:
            err(path, f"job '{job_id}' has no 'runs-on'")
        steps = job.get("steps")
        if not isinstance(steps, list) or not steps:
            err(path, f"job '{job_id}' has no 'steps'")
            continue
        for i, step in enumerate(steps):
            if not isinstance(step, dict):
                err(path, f"job '{job_id}' step {i} is not a mapping")
            elif "run" not in step and "uses" not in step:
                err(path,
                    f"job '{job_id}' step {i} has neither "
                    f"'run' nor 'uses'")
        strategy = job.get("strategy", {})
        matrix = (strategy or {}).get("matrix", {})
        if matrix and not isinstance(matrix, dict):
            err(path, f"job '{job_id}' matrix is not a mapping")

if errors:
    for e in errors:
        print(f"ci-lint: {e}", file=sys.stderr)
    sys.exit(1)
print(f"ci-lint: {len(workflows)} workflow(s) structurally valid")
EOF
