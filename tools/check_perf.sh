#!/bin/sh
# Performance regression check: run the micro-benchmarks and the
# Figure-4 time/overhead bench, write their BENCH_*.json records, and
# compare the headline numbers against the committed baselines at the
# repo root. Regressions WARN — they never fail the build, because
# wall-clock numbers are machine-dependent; the point is a visible
# diff next to the functional checks, plus fresh baselines to commit
# when a change is intentional. Under GitHub Actions each regression
# additionally emits a `::warning::` annotation so it surfaces on the
# PR without failing it. The script exits non-zero only when the
# harness itself fails (benchmarks do not build, run, or record).
#
# Usage: tools/check_perf.sh [build-dir] [out-dir]
#   build-dir  default: build        (must already be configured)
#   out-dir    default: <build-dir>/perf   (new BENCH_*.json land here)
set -e

. "$(dirname "$0")/lib.sh"
BUILD=$(fits_abspath "${1:-"$FITS_ROOT/build"}")
OUT=$(fits_abspath "${2:-"$BUILD/perf"}")

fits_build "$BUILD" bench_micro bench_fig4_time_overhead
mkdir -p "$OUT"

# Old google-benchmark: --benchmark_min_time takes plain seconds.
(cd "$OUT" && FITS_BENCH_DIR="$OUT" \
    "$BUILD/bench/bench_micro" --benchmark_min_time=0.2)
(cd "$OUT" && FITS_BENCH_DIR="$OUT" "$BUILD/bench/bench_fig4_time_overhead")

# Warn-only comparison of every shared numeric field, baseline vs new.
python3 - "$FITS_ROOT" "$OUT" <<'EOF'
import json, os, sys

root, out = sys.argv[1], sys.argv[2]
tolerance = 0.15  # warn beyond +/-15%
warned = False
missing_record = False
for name in ("BENCH_micro.json", "BENCH_fig4_time_overhead.json"):
    base_path = os.path.join(root, name)
    new_path = os.path.join(out, name)
    if not os.path.exists(new_path):
        print(f"perf: {name}: no new record produced", file=sys.stderr)
        missing_record = True
        continue
    if not os.path.exists(base_path):
        print(f"perf: {name}: no committed baseline; copy "
              f"{new_path} to the repo root to create one")
        continue
    base = json.load(open(base_path))["fields"]
    new = json.load(open(new_path))["fields"]
    for key in sorted(set(base) & set(new)):
        b, n = base[key], new[key]
        if not isinstance(b, (int, float)) or not isinstance(n, (int, float)):
            continue
        if b == 0:
            continue
        delta = (n - b) / abs(b)
        marker = ""
        if key.endswith("_ms") and delta > tolerance:
            marker = "  <-- WARNING: slower than baseline"
            warned = True
            # Machine-readable GitHub Actions annotation: shows up on
            # the PR checks page without failing the job.
            print(f"::warning title=perf regression::"
                  f"{name[6:-5]}.{key}: baseline {b:g} -> {n:g} "
                  f"({delta:+.1%})")
        print(f"perf: {name[6:-5]}.{key}: baseline {b:g} -> {n:g} "
              f"({delta:+.1%}){marker}")
print("perf: comparison is advisory only (warn, never fail)"
      if warned else "perf: within baseline tolerance")
# A missing record means the harness itself broke: that DOES fail.
sys.exit(1 if missing_record else 0)
EOF

echo "perf: records written to $OUT"
