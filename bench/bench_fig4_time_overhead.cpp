/**
 * @file
 * Reproduces Figure 4 of the FITS paper: analysis time plotted against
 * the number of functions and the size of the target binary. The
 * paper's claim is a strong positive correlation on both axes; this
 * harness prints the raw series, bucket summaries, and the Pearson
 * correlation coefficients.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "mlkit/stats.hh"
#include "obs/bench_record.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

int
main()
{
    using namespace fits;

    std::printf("=== Figure 4: time overhead vs binary properties "
                "===\n\n");

    const auto corpus = synth::generateStandardCorpus();

    std::vector<double> fns, bytes, ms;
    for (const auto &outcome :
         eval::CorpusRunner().runInference(corpus)) {
        if (!outcome.ok)
            continue;
        fns.push_back(static_cast<double>(outcome.numFunctions));
        bytes.push_back(static_cast<double>(outcome.binaryBytes));
        ms.push_back(outcome.analysisMs);
    }

    // Scatter series (the figure's two panels), sorted by x.
    std::vector<std::size_t> order(fns.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return fns[a] < fns[b];
              });

    eval::TablePrinter scatter(
        {"#Functions", "Binary size (KB)", "Analysis time (ms)"});
    for (std::size_t i : order) {
        scatter.addRow({std::to_string(static_cast<long>(fns[i])),
                        eval::fixed(bytes[i] / 1024.0, 1),
                        eval::fixed(ms[i], 1)});
    }
    scatter.print();

    // Bucketized summary (reads like the figure's trend line).
    std::printf("\nBucketized trend (by function count):\n");
    eval::TablePrinter buckets(
        {"Bucket", "#Samples", "Median time (ms)"});
    const std::vector<std::pair<double, double>> ranges = {
        {0, 500}, {500, 1000}, {1000, 1500}, {1500, 2500}};
    for (const auto &[lo, hi] : ranges) {
        std::vector<double> xs;
        for (std::size_t i = 0; i < fns.size(); ++i) {
            if (fns[i] >= lo && fns[i] < hi)
                xs.push_back(ms[i]);
        }
        if (xs.empty())
            continue;
        std::sort(xs.begin(), xs.end());
        buckets.addRow({support::format("%.0f-%.0f", lo, hi),
                        std::to_string(xs.size()),
                        eval::fixed(xs[xs.size() / 2], 1)});
    }
    buckets.print();

    const double corrFns = ml::correlation(fns, ms);
    const double corrBytes = ml::correlation(bytes, ms);
    std::printf("\nPearson correlation, time vs #functions: %.3f\n",
                corrFns);
    std::printf("Pearson correlation, time vs binary size: %.3f\n",
                corrBytes);
    std::printf("\nThe paper reports both correlations strongly "
                "positive; absolute times differ\n(its substrate is "
                "angr on real firmware; ours is the FIR lifter on "
                "synthetic\nimages) but the shape is what Figure 4 "
                "claims.\n");

    obs::BenchRecord record("fig4_time_overhead");
    record.add("samples", static_cast<double>(fns.size()));
    record.add("corr_time_vs_functions", corrFns);
    record.add("corr_time_vs_bytes", corrBytes);
    record.write();
    return 0;
}
