/**
 * @file
 * Ablations of this implementation's own design choices (the knobs
 * DESIGN.md calls out), beyond the paper's Figure-5 feature ablation:
 *
 *   A. vendor mode — symbol-name prior on unstripped builds
 *      (Discussion §5: "vendors ... can leverage more semantic
 *      information ... to improve the performance of FITS");
 *   B. DBSCAN eps sweep (cluster granularity);
 *   C. DBSCAN noise handling — singleton classes vs discarding;
 *   D. UCSE indirect-target resolution on/off (call-graph
 *      completeness feeds the caller/callee features);
 *   E. anchor-matrix size — how many libc implementations Eq. 2
 *      actually needs.
 */

#include <cstdio>
#include <vector>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

eval::PrecisionStats
rerank(const std::vector<eval::InferenceOutcome> &outcomes,
       const core::InferConfig &config,
       std::size_t anchorLimit = SIZE_MAX)
{
    eval::PrecisionStats stats;
    for (const auto &outcome : outcomes) {
        if (!outcome.ok) {
            stats.addRank(-1);
            continue;
        }
        if (anchorLimit < outcome.behavior.anchorFns.size()) {
            core::BehaviorRepr trimmed = outcome.behavior;
            trimmed.anchorFns.resize(anchorLimit);
            stats.addRank(eval::rankOfFirstIts(
                core::inferIts(trimmed, config).ranking,
                outcome.truth));
        } else {
            stats.addRank(eval::rankOfFirstIts(
                core::inferIts(outcome.behavior, config).ranking,
                outcome.truth));
        }
    }
    return stats;
}

void
addRow(eval::TablePrinter &table, const std::string &label,
       const eval::PrecisionStats &stats)
{
    table.addRow({label, eval::percent(stats.p1()),
                  eval::percent(stats.p2()),
                  eval::percent(stats.p3())});
}

} // namespace

int
main()
{
    std::printf("=== Design-choice ablations ===\n\n");

    // Analyze the corpus once (stripped) and once in vendor mode;
    // each pass generates samples inside the runner's workers.
    const auto specs = synth::standardDataset();
    auto vendorSpecs = specs;
    for (auto &spec : vendorSpecs)
        spec.keepSymbols = true;

    const eval::CorpusRunner runner;
    const auto stripped = runner.runInferenceOnSpecs(specs);
    const auto vendor = runner.runInferenceOnSpecs(vendorSpecs);

    // ---- A: vendor mode ---------------------------------------------
    std::printf("A. Symbol-name prior (Discussion §5 vendor mode)\n");
    const auto strippedStats = rerank(stripped, core::InferConfig{});
    core::InferConfig namesOn;
    namesOn.useSymbolNames = true;
    const auto vendorPriorStats = rerank(vendor, namesOn);
    {
        eval::TablePrinter table({"Configuration", "Top-1", "Top-2",
                                  "Top-3"});
        addRow(table, "stripped (third-party analyst)",
               strippedStats);
        core::InferConfig namesOff;
        addRow(table, "unstripped, prior unused",
               rerank(vendor, namesOff));
        addRow(table, "unstripped + symbol prior", vendorPriorStats);
        table.print();
        std::printf("The prior pushes websGetVar-style names above "
                    "nvram/cfg look-alikes, as the\npaper predicts "
                    "for vendors analyzing their own builds.\n\n");
    }

    // ---- B: DBSCAN eps sweep ------------------------------------------
    std::printf("B. DBSCAN eps (clustering granularity)\n");
    {
        eval::TablePrinter table({"eps", "Top-1", "Top-2", "Top-3"});
        for (double eps : {0.15, 0.25, 0.35, 0.50, 0.80}) {
            core::InferConfig config;
            config.dbscan.eps = eps;
            addRow(table, eval::fixed(eps, 2),
                   rerank(stripped, config));
        }
        table.print();
        std::printf("Precision is eps-insensitive here because the "
                    "noise-as-singletons policy\n(section C) lets the "
                    "complexity filter recover whatever the density "
                    "threshold\nmisclassifies.\n\n");
    }

    // ---- C: noise handling ---------------------------------------------
    std::printf("C. DBSCAN noise points\n");
    {
        eval::TablePrinter table({"Policy", "Top-1", "Top-2",
                                  "Top-3"});
        core::InferConfig keep;
        addRow(table, "singleton classes (ours)",
               rerank(stripped, keep));
        core::InferConfig drop;
        drop.noiseAsSingletons = false;
        addRow(table, "discard noise", rerank(stripped, drop));
        table.print();
        std::printf("Rare behaviours (the ITS often is one) must "
                    "reach the complexity filter;\ndiscarding noise "
                    "silently removes them.\n\n");
    }

    // ---- D: UCSE indirect resolution ------------------------------------
    std::printf("D. UCSE indirect-target resolution\n");
    {
        eval::CorpusRunner::Config config;
        config.pipeline.behavior.ucse.maxSteps = 0; // resolver off
        const auto noUcse =
            eval::CorpusRunner(config).runInferenceOnSpecs(specs);
        eval::TablePrinter table({"Configuration", "Top-1", "Top-2",
                                  "Top-3"});
        addRow(table, "UCSE on (ours)",
               rerank(stripped, core::InferConfig{}));
        addRow(table, "UCSE off", rerank(noUcse, core::InferConfig{}));
        table.print();
        std::printf("Measured finding: inference precision is robust "
                    "to losing indirect call\nedges — the ITS's "
                    "callers are direct calls. The resolution matters "
                    "on the taint\nside instead: Table 5's indirect-"
                    "param bugs are exactly the ones a call graph\n"
                    "without UCSE cannot reach.\n\n");
    }

    // ---- E: anchor matrix size -------------------------------------------
    std::printf("E. Anchor-matrix size (Eq. 2)\n");
    {
        eval::TablePrinter table({"#Anchors", "Top-1", "Top-2",
                                  "Top-3"});
        for (std::size_t n : {std::size_t{1}, std::size_t{3},
                              std::size_t{6}, std::size_t{10},
                              SIZE_MAX}) {
            addRow(table,
                   n == SIZE_MAX ? "all (15)" : std::to_string(n),
                   rerank(stripped, core::InferConfig{}, n));
        }
        table.print();
        std::printf("A handful of anchor implementations already "
                    "spans the behaviour profile;\nthe full set "
                    "mostly adds robustness.\n");
    }

    obs::BenchRecord record("ablation_design");
    record.add("samples", static_cast<double>(specs.size()));
    record.add("stripped_top1", strippedStats.p1());
    record.add("stripped_top3", strippedStats.p3());
    record.add("vendor_prior_top1", vendorPriorStats.p1());
    record.add("vendor_prior_top3", vendorPriorStats.p3());
    record.write();
    return 0;
}
