/**
 * @file
 * Reproduces Table 7 of the FITS paper: ITS-inference precision with
 * the BFV versus the two code-structure representations (NERO-style
 * Augmented-CFG and Gemini-style Attributed-CFG).
 */

#include <cstdio>
#include <vector>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "synth/firmware_gen.hh"

int
main()
{
    using namespace fits;

    std::printf("=== Table 7: inference results based on different "
                "representations ===\n\n");

    const auto corpus = synth::generateStandardCorpus();
    const auto outcomes = eval::CorpusRunner().runInference(corpus);

    eval::TablePrinter table(
        {"", "Augmented-CFG", "Attributed-CFG", "BFV"});

    std::vector<eval::PrecisionStats> stats(3);
    const core::Representation reprs[3] = {
        core::Representation::AugmentedCfg,
        core::Representation::AttributedCfg,
        core::Representation::Bfv,
    };
    for (int r = 0; r < 3; ++r) {
        core::InferConfig config;
        config.representation = reprs[r];
        for (const auto &outcome : outcomes) {
            if (!outcome.ok) {
                stats[r].addRank(-1);
                continue;
            }
            const auto inference =
                core::inferIts(outcome.behavior, config);
            stats[r].addRank(eval::rankOfFirstIts(inference.ranking,
                                                  outcome.truth));
        }
    }

    table.addRow({"Top-1", eval::percent(stats[0].p1()),
                  eval::percent(stats[1].p1()),
                  eval::percent(stats[2].p1())});
    table.addRow({"Top-2", eval::percent(stats[0].p2()),
                  eval::percent(stats[1].p2()),
                  eval::percent(stats[2].p2())});
    table.addRow({"Top-3", eval::percent(stats[0].p3()),
                  eval::percent(stats[1].p3()),
                  eval::percent(stats[2].p3())});
    table.print();

    std::printf("\nPaper's Table 7: Augmented-CFG 0/5/10%%, "
                "Attributed-CFG 0/0/1%%, BFV 47/63/89%%.\n"
                "Code-structure representations capture code-level "
                "similarity, not behaviour:\nthey lack caller counts, "
                "parameter flow, and call-site string features, so "
                "they\ncannot separate an input getter from any other "
                "loop-over-memory function.\n");

    obs::BenchRecord record("table7_representations");
    const char *names[3] = {"augmented_cfg", "attributed_cfg", "bfv"};
    for (int r = 0; r < 3; ++r) {
        record.add(std::string(names[r]) + "_top1", stats[r].p1());
        record.add(std::string(names[r]) + "_top3", stats[r].p3());
    }
    record.write();
    return 0;
}
