/**
 * @file
 * Reproduces Figure 5 and the single-feature study of §4.4: ITS
 * inference precision when one BFV feature is removed (CF-1..CF-11)
 * compared to the full BFV, and inference from each individual
 * feature alone.
 */

#include <cstdio>
#include <vector>

#include "core/bfv.hh"
#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

/** Re-rank every analyzed sample under one inference config. */
eval::PrecisionStats
rerank(const std::vector<eval::InferenceOutcome> &outcomes,
       const core::InferConfig &config)
{
    eval::PrecisionStats stats;
    for (const auto &outcome : outcomes) {
        if (!outcome.ok) {
            stats.addRank(-1);
            continue;
        }
        const auto inference = core::inferIts(outcome.behavior,
                                              config);
        stats.addRank(eval::rankOfFirstIts(inference.ranking,
                                           outcome.truth));
    }
    return stats;
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: BFV ablation (CF-k removes feature k) "
                "===\n\n");

    const auto corpus = synth::generateStandardCorpus();

    // The expensive pass happens once (fanned out across workers);
    // every variant only re-ranks the retained representations.
    const auto outcomes = eval::CorpusRunner().runInference(corpus);

    eval::TablePrinter table(
        {"Variant", "Removed feature", "Top-1", "Top-2", "Top-3"});
    const auto full = rerank(outcomes, core::InferConfig{});
    {
        table.addRow({"BFV", "-", eval::percent(full.p1()),
                      eval::percent(full.p2()),
                      eval::percent(full.p3())});
        table.addSeparator();
    }
    for (int k = 0; k < core::Bfv::kNumFeatures; ++k) {
        core::InferConfig config;
        config.dropFeature = k;
        const auto stats = rerank(outcomes, config);
        table.addRow({support::format("CF-%d", k + 1),
                      core::Bfv::featureName(k),
                      eval::percent(stats.p1()),
                      eval::percent(stats.p2()),
                      eval::percent(stats.p3())});
    }
    table.print();
    std::printf("\nPaper's claim: the full BFV dominates every CF-k "
                "variant, and CF-3 (removing\nthe number of callers) "
                "collapses top-1/top-2 precision.\n");

    // ---- single-feature inference (§4.4) -----------------------------
    std::printf("\n=== Single-feature inference ===\n\n");
    eval::TablePrinter single({"Feature", "Top-1", "Top-2", "Top-3"});
    for (int k = 0; k < core::Bfv::kNumFeatures; ++k) {
        core::InferConfig config;
        config.onlyFeature = k;
        const auto stats = rerank(outcomes, config);
        single.addRow({core::Bfv::featureName(k),
                       eval::percent(stats.p1()),
                       eval::percent(stats.p2()),
                       eval::percent(stats.p3())});
    }
    single.print();
    std::printf("\nPaper's claim: no single feature suffices; only "
                "\"number of callers\" shows a\nweak signal (21%% "
                "top-3), and boolean features alone are "
                "meaningless.\n");

    obs::BenchRecord record("fig5_ablation");
    record.add("samples", static_cast<double>(corpus.size()));
    record.add("full_bfv_top1", full.p1());
    record.add("full_bfv_top2", full.p2());
    record.add("full_bfv_top3", full.p3());
    record.write();
    return 0;
}
