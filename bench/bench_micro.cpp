/**
 * @file
 * Micro-benchmarks (google-benchmark) of the analysis primitives the
 * FITS pipeline is built on: FBIN decode/lift, UCSE exploration, CFG +
 * loop analysis, reaching definitions, Table-2 backtracking, DBSCAN,
 * and Eq.-2 scoring. These are the ingredients whose costs compose
 * into the Figure 4 curves.
 */

#include <benchmark/benchmark.h>

#include "analysis/program_analysis.hh"
#include "obs/bench_record.hh"
#include "obs/metrics.hh"
#include "binary/fbin.hh"
#include "core/behavior.hh"
#include "core/infer.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "mlkit/dbscan.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

/** One mid-size sample shared by all micro-benchmarks. */
const synth::GeneratedFirmware &
sample()
{
    static const synth::GeneratedFirmware fw = [] {
        synth::SampleSpec spec;
        spec.profile = synth::tendaProfile();
        spec.profile.minCustomFns = 600;
        spec.profile.maxCustomFns = 700;
        spec.product = "AC9";
        spec.version = "V1";
        spec.seed = 0xbe9c;
        return synth::generateFirmware(spec);
    }();
    return fw;
}

const fw::AnalysisTarget &
target()
{
    static const fw::AnalysisTarget t = [] {
        auto unpacked = fw::unpackFirmware(sample().bytes);
        return fw::selectAnalysisTarget(
                   unpacked.value().filesystem)
            .take();
    }();
    return t;
}

void
BM_FirmwareUnpack(benchmark::State &state)
{
    for (auto _ : state) {
        auto unpacked = fw::unpackFirmware(sample().bytes);
        benchmark::DoNotOptimize(unpacked);
    }
}
BENCHMARK(BM_FirmwareUnpack);

void
BM_FbinLoad(benchmark::State &state)
{
    auto unpacked = fw::unpackFirmware(sample().bytes);
    const fw::FileEntry *entry = nullptr;
    for (const auto &f : unpacked.value().filesystem.files()) {
        if (f.type == fw::FileType::Executable &&
            f.path != "bin/busybox") {
            entry = &f;
        }
    }
    for (auto _ : state) {
        auto image = bin::loadBinary(entry->bytes);
        benchmark::DoNotOptimize(image);
    }
}
BENCHMARK(BM_FbinLoad);

void
BM_UcsePerFunction(benchmark::State &state)
{
    const auto &t = target();
    const analysis::UcseExplorer explorer(*t.main);
    std::size_t i = 0;
    const auto &fns = t.main->program.functions();
    for (auto _ : state) {
        auto result = explorer.explore(fns[i++ % fns.size()]);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_UcsePerFunction);

void
BM_FunctionAnalysis(benchmark::State &state)
{
    const auto &t = target();
    std::size_t i = 0;
    const auto &fns = t.main->program.functions();
    for (auto _ : state) {
        auto fa = analysis::FunctionAnalysis::analyze(
            *t.main, fns[i++ % fns.size()]);
        benchmark::DoNotOptimize(fa);
    }
}
BENCHMARK(BM_FunctionAnalysis);

void
BM_WholeProgramAnalysis(benchmark::State &state)
{
    const auto &t = target();
    for (auto _ : state) {
        const analysis::LinkedProgram linked(*t.main, t.libraries);
        auto pa = analysis::ProgramAnalysis::analyze(linked);
        benchmark::DoNotOptimize(pa);
    }
}
BENCHMARK(BM_WholeProgramAnalysis);

void
BM_BehaviorExtraction(benchmark::State &state)
{
    const auto &t = target();
    const analysis::LinkedProgram linked(*t.main, t.libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const core::BehaviorAnalyzer analyzer;
    for (auto _ : state) {
        auto repr = analyzer.analyze(pa);
        benchmark::DoNotOptimize(repr);
    }
}
BENCHMARK(BM_BehaviorExtraction);

void
BM_BehaviorExtractionParallel(benchmark::State &state)
{
    const auto &t = target();
    const analysis::LinkedProgram linked(*t.main, t.libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    core::BehaviorAnalyzer::Config config;
    config.jobs = support::hardwareJobs();
    const core::BehaviorAnalyzer analyzer(config);
    for (auto _ : state) {
        auto repr = analyzer.analyze(pa);
        benchmark::DoNotOptimize(repr);
    }
}
BENCHMARK(BM_BehaviorExtractionParallel);

void
BM_InferIts(benchmark::State &state)
{
    const auto &t = target();
    const analysis::LinkedProgram linked(*t.main, t.libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const core::BehaviorAnalyzer analyzer;
    const auto repr = analyzer.analyze(pa);
    for (auto _ : state) {
        auto result = core::inferIts(repr);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_InferIts);

void
BM_ReachingDefs(benchmark::State &state)
{
    const auto &t = target();
    // Everything upstream of the reach-defs kernel (UCSE for resolved
    // jumps, CFG, constants, parameter count) is computed once; the
    // timed loop re-runs only the worklist fixpoint.
    struct Prep
    {
        const ir::Function *fn;
        analysis::Cfg cfg;
        analysis::TmpConstMap consts;
        int numParams;
    };
    std::vector<Prep> preps;
    for (const auto &fn : t.main->program.functions()) {
        auto fa = analysis::FunctionAnalysis::analyze(*t.main, fn);
        preps.push_back({&fn, std::move(fa.cfg),
                         std::move(fa.consts), fa.params.count});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const Prep &p = preps[i++ % preps.size()];
        auto flow = analysis::ReachingDefs::analyze(
            p.cfg, *p.fn, p.consts, p.numParams);
        benchmark::DoNotOptimize(flow);
    }
}
BENCHMARK(BM_ReachingDefs);

void
BM_Dbscan(benchmark::State &state)
{
    support::Rng rng(7);
    ml::Matrix points;
    for (int i = 0; i < 800; ++i) {
        ml::Vec row(11);
        for (auto &v : row)
            v = rng.uniformReal();
        points.push_back(std::move(row));
    }
    const ml::DbscanConfig config{0.35, 3, ml::Metric::Euclidean};
    for (auto _ : state) {
        auto clusters = ml::dbscan(points, config);
        benchmark::DoNotOptimize(clusters);
    }
}
BENCHMARK(BM_Dbscan);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const std::size_t run = benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // One obs-instrumented pass over the shared sample captures the
    // hot-kernel spans (kernel.reachdef from whole-program analysis,
    // kernel.cluster / kernel.rank from inference) so BENCH_micro.json
    // records their absolute cost alongside the benchmark rates.
    fits::obs::Registry::instance().reset();
    fits::obs::setEnabled(true);
    {
        const auto &t = target();
        const fits::analysis::LinkedProgram linked(*t.main,
                                                   t.libraries);
        const auto pa = fits::analysis::ProgramAnalysis::analyze(linked);
        const fits::core::BehaviorAnalyzer analyzer;
        const auto repr = analyzer.analyze(pa);
        auto result = fits::core::inferIts(repr);
        benchmark::DoNotOptimize(result);
    }
    fits::obs::setEnabled(false);
    const auto snapshot = fits::obs::Registry::instance().snapshot();

    fits::obs::BenchRecord record("micro");
    record.add("benchmarks_run", static_cast<double>(run));
    const auto addKernel = [&](const std::string &key,
                               const std::string &span) {
        // Spans nest under their parent ("cluster/kernel.cluster"),
        // so match the leaf name anywhere in the hierarchy.
        for (const auto &[name, view] : snapshot.timers) {
            if (name != span &&
                (name.size() <= span.size() ||
                 name.compare(name.size() - span.size() - 1,
                              std::string::npos,
                              "/" + span) != 0)) {
                continue;
            }
            record.add(key + "_ms", view.totalMs);
            record.add(key + "_calls",
                       static_cast<double>(view.count));
            return;
        }
    };
    addKernel("kernel_reachdef", "kernel.reachdef");
    addKernel("kernel_cluster", "kernel.cluster");
    addKernel("kernel_rank", "kernel.rank");
    record.write();
    return 0;
}
