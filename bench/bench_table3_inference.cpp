/**
 * @file
 * Reproduces Table 3 of the FITS paper: top-1/top-2/top-3 precision of
 * ITS inference per vendor group, average analysis time, and the §4.2
 * failure analysis (four pre-processing failures, two struct-offset
 * designs).
 */

#include <cstdio>
#include <map>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

struct GroupStats
{
    eval::PrecisionStats precision;
    double totalMs = 0.0;
    int count = 0;
};

std::string
seriesLabel(const synth::VendorProfile &profile)
{
    std::string out;
    for (std::size_t i = 0; i < profile.series.size() && i < 3; ++i) {
        if (i > 0)
            out += "/";
        out += profile.series[i];
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Table 3: statistics of ITS inference results "
                "===\n\n");

    const auto corpus = synth::generateStandardCorpus();

    const eval::CorpusRunner runner;
    std::printf("(%zu samples, %zu worker threads — set FITS_JOBS to "
                "override)\n\n",
                corpus.size(), runner.jobs());
    const auto outcomes = runner.runInference(corpus);

    // Group key: (latest?, vendor), in the paper's row order.
    std::map<std::pair<bool, std::string>, GroupStats> groups;
    eval::PrecisionStats overall;
    double overallMs = 0.0;
    std::vector<std::string> failures;

    for (std::size_t s = 0; s < corpus.size(); ++s) {
        const auto &fw = corpus[s];
        const auto &outcome = outcomes[s];
        auto &group = groups[{fw.spec.latest,
                              fw.spec.profile.vendor}];
        ++group.count;
        group.totalMs += outcome.analysisMs;
        overallMs += outcome.analysisMs;

        // The paper's top-n criterion: at least one of the top n
        // ranked custom functions is a usable ITS. Failed samples
        // count as misses.
        const int rank = outcome.ok ? outcome.firstItsRank : -1;
        group.precision.addRank(rank);
        overall.addRank(rank);

        if (!outcome.ok) {
            failures.push_back(fw.spec.profile.vendor + " " +
                               fw.spec.name + ": " + outcome.error);
        } else if (rank < 0) {
            failures.push_back(
                fw.spec.profile.vendor + " " + fw.spec.name +
                ": no custom function qualifies as an ITS "
                "(struct-offset design)");
        }
    }

    eval::TablePrinter table({"Dataset", "Vendor", "Series", "#FW",
                              "Top-1", "Top-2", "Top-3",
                              "Avg time (mm:ss)"});
    const std::vector<std::string> vendorOrder = {
        "NETGEAR", "D-Link", "TP-Link", "Tenda", "Cisco"};
    for (bool latest : {false, true}) {
        for (const auto &vendor : vendorOrder) {
            auto it = groups.find({latest, vendor});
            if (it == groups.end())
                continue;
            const GroupStats &g = it->second;
            synth::VendorProfile profile =
                vendor == "NETGEAR"   ? synth::netgearProfile()
                : vendor == "D-Link"  ? synth::dlinkProfile()
                : vendor == "TP-Link" ? synth::tplinkProfile()
                : vendor == "Tenda"   ? synth::tendaProfile()
                                      : synth::ciscoProfile();
            table.addRow({latest ? "Latest" : "Karonte", vendor,
                          seriesLabel(profile),
                          std::to_string(g.count),
                          eval::percent(g.precision.p1()),
                          eval::percent(g.precision.p2()),
                          eval::percent(g.precision.p3()),
                          eval::hmm(g.totalMs / g.count)});
        }
        if (!latest)
            table.addSeparator();
    }
    table.addSeparator();
    table.addRow({"Average", "-", "-",
                  std::to_string(overall.total),
                  eval::percent(overall.p1()),
                  eval::percent(overall.p2()),
                  eval::percent(overall.p3()),
                  eval::hmm(overallMs / overall.total)});
    table.print();

    std::printf("\nFailure analysis (the paper reports 6/59: four "
                "pre-processing failures,\ntwo struct-offset designs "
                "without any ITS):\n");
    for (const auto &f : failures)
        std::printf("  - %s\n", f.c_str());
    std::printf("\n%zu failing samples out of %d\n", failures.size(),
                overall.total);

    obs::BenchRecord record("table3_inference");
    record.add("samples", static_cast<double>(overall.total));
    record.add("failures", static_cast<double>(failures.size()));
    record.add("top1", overall.p1());
    record.add("top2", overall.p2());
    record.add("top3", overall.p3());
    record.add("avg_analysis_ms", overallMs / overall.total);
    record.write();
    return 0;
}
