/**
 * @file
 * Reproduces Table 5 of the FITS paper: alerts, verified bugs, and
 * analysis time of Karonte, Karonte-ITS, STA, and STA-ITS per vendor
 * group, the cross-engine set relations the paper highlights, and the
 * §4.3 case study (path length from a CTS vs from an ITS).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

struct GroupRow
{
    int count = 0;
    eval::EngineStats karonte, karonteIts, sta, staIts;
};

} // namespace

int
main()
{
    std::printf("=== Table 5: bug finding results ===\n\n");

    const auto corpus = synth::generateStandardCorpus();

    const eval::CorpusRunner runner;
    std::printf("(%zu samples, %zu worker threads — set FITS_JOBS to "
                "override)\n\n",
                corpus.size(), runner.jobs());
    const auto outcomes = runner.runTaint(corpus);

    std::map<std::pair<bool, std::string>, GroupRow> groups;
    GroupRow total;
    bool karonteSuperset = true;
    bool staSuperset = true;
    std::set<ir::Addr> staOnly, karonteOnly;
    std::size_t staOnlyCount = 0, karonteOnlyCount = 0;

    for (std::size_t s = 0; s < corpus.size(); ++s) {
        const auto &fw = corpus[s];
        const auto &outcome = outcomes[s];
        if (!outcome.ok)
            continue; // pre-processing failures have no taint run
        auto &g = groups[{fw.spec.latest, fw.spec.profile.vendor}];
        ++g.count;
        g.karonte += outcome.karonte;
        g.karonteIts += outcome.karonteIts;
        g.sta += outcome.sta;
        g.staIts += outcome.staIts;
        ++total.count;
        total.karonte += outcome.karonte;
        total.karonteIts += outcome.karonteIts;
        total.sta += outcome.sta;
        total.staIts += outcome.staIts;

        // Set relations per sample.
        auto contains = [](const std::vector<ir::Addr> &super,
                           const std::vector<ir::Addr> &sub) {
            return std::all_of(
                sub.begin(), sub.end(), [&](ir::Addr a) {
                    return std::find(super.begin(), super.end(), a) !=
                           super.end();
                });
        };
        karonteSuperset &= contains(outcome.karonteItsBugs,
                                    outcome.karonteBugs);
        staSuperset &= contains(outcome.staItsBugs, outcome.staBugs);
        for (ir::Addr a : outcome.staBugs) {
            if (std::find(outcome.karonteBugs.begin(),
                          outcome.karonteBugs.end(),
                          a) == outcome.karonteBugs.end()) {
                ++staOnlyCount;
            }
        }
        for (ir::Addr a : outcome.karonteBugs) {
            if (std::find(outcome.staBugs.begin(),
                          outcome.staBugs.end(),
                          a) == outcome.staBugs.end()) {
                ++karonteOnlyCount;
            }
        }
    }

    eval::TablePrinter table(
        {"Dataset", "Vendor", "#FW", "K alerts", "K bugs", "K ms",
         "K-ITS alerts", "K-ITS bugs", "K-ITS ms", "STA alerts",
         "STA bugs", "STA ms", "STA-ITS alerts", "STA-ITS bugs",
         "STA-ITS ms"});
    const std::vector<std::string> vendorOrder = {
        "NETGEAR", "D-Link", "TP-Link", "Tenda", "Cisco"};
    for (bool latest : {false, true}) {
        for (const auto &vendor : vendorOrder) {
            auto it = groups.find({latest, vendor});
            if (it == groups.end())
                continue;
            const GroupRow &g = it->second;
            table.addRow({latest ? "Latest" : "Karonte", vendor,
                          std::to_string(g.count),
                          std::to_string(g.karonte.alerts),
                          std::to_string(g.karonte.bugs),
                          eval::fixed(g.karonte.ms, 0),
                          std::to_string(g.karonteIts.alerts),
                          std::to_string(g.karonteIts.bugs),
                          eval::fixed(g.karonteIts.ms, 0),
                          std::to_string(g.sta.alerts),
                          std::to_string(g.sta.bugs),
                          eval::fixed(g.sta.ms, 0),
                          std::to_string(g.staIts.alerts),
                          std::to_string(g.staIts.bugs),
                          eval::fixed(g.staIts.ms, 0)});
        }
        if (!latest)
            table.addSeparator();
    }
    table.addSeparator();
    table.addRow({"Total", "-", std::to_string(total.count),
                  std::to_string(total.karonte.alerts),
                  std::to_string(total.karonte.bugs),
                  eval::fixed(total.karonte.ms, 0),
                  std::to_string(total.karonteIts.alerts),
                  std::to_string(total.karonteIts.bugs),
                  eval::fixed(total.karonteIts.ms, 0),
                  std::to_string(total.sta.alerts),
                  std::to_string(total.sta.bugs),
                  eval::fixed(total.sta.ms, 0),
                  std::to_string(total.staIts.alerts),
                  std::to_string(total.staIts.bugs),
                  eval::fixed(total.staIts.ms, 0)});
    table.print();

    std::printf("\nSet relations the paper reports:\n");
    std::printf("  Karonte-ITS found every Karonte bug:    %s "
                "(paper: yes; +%zd bugs)\n",
                karonteSuperset ? "yes" : "NO",
                static_cast<long>(total.karonteIts.bugs) -
                    static_cast<long>(total.karonte.bugs));
    std::printf("  STA-ITS found every STA bug:            %s "
                "(paper: yes; +%zd bugs)\n",
                staSuperset ? "yes" : "NO",
                static_cast<long>(total.staIts.bugs) -
                    static_cast<long>(total.sta.bugs));
    std::printf("  Bugs STA found that Karonte missed:     %zu "
                "(paper: 9 — deep flows beyond the\n"
                "      symbolic engine's depth/path budget)\n",
                staOnlyCount);
    std::printf("  Bugs Karonte found that STA missed:     %zu "
                "(scan loops / indirect calls the\n"
                "      IDA-style data-flow recovery cannot see)\n",
                karonteOnlyCount);

    // ---- Case study (§4.3) ------------------------------------------
    std::printf("\nCase study (CVE-2022-20825 analogue, Cisco "
                "profile):\n");
    for (const auto &fw : corpus) {
        if (fw.spec.profile.vendor != "Cisco")
            continue;
        // Path length: the deep-chain bugs need >= 5 custom calls
        // from the CTS-side entry, but only ~2 calls from the ITS.
        std::size_t deepBugs = 0;
        for (const auto &site : fw.truth.sinkSites) {
            if (site.isBug() &&
                site.flow == synth::FlowKind::ItsDeepChain) {
                ++deepBugs;
            }
        }
        std::printf("  %s: %zu deep-chain bugs; reaching them from "
                    "recv needs the socket chain\n"
                    "  (5+ custom calls, ~50 library calls) while the "
                    "ITS getter reaches them in\n"
                    "  2 calls — the vanilla engines time out exactly "
                    "there (see Table 5 row).\n",
                    fw.spec.name.c_str(), deepBugs);
        break;
    }

    obs::BenchRecord record("table5_bugs");
    record.add("samples", static_cast<double>(total.count));
    record.add("karonte_alerts",
               static_cast<double>(total.karonte.alerts));
    record.add("karonte_bugs", static_cast<double>(total.karonte.bugs));
    record.add("karonte_its_alerts",
               static_cast<double>(total.karonteIts.alerts));
    record.add("karonte_its_bugs",
               static_cast<double>(total.karonteIts.bugs));
    record.add("sta_alerts", static_cast<double>(total.sta.alerts));
    record.add("sta_bugs", static_cast<double>(total.sta.bugs));
    record.add("sta_its_alerts",
               static_cast<double>(total.staIts.alerts));
    record.add("sta_its_bugs", static_cast<double>(total.staIts.bugs));
    record.add("sta_only_bugs", static_cast<double>(staOnlyCount));
    record.add("karonte_only_bugs",
               static_cast<double>(karonteOnlyCount));
    record.add("karonte_its_superset", karonteSuperset ? 1.0 : 0.0);
    record.add("sta_its_superset", staSuperset ? 1.0 : 0.0);
    record.write();
    return 0;
}
