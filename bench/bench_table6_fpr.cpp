/**
 * @file
 * Reproduces Table 6 of the FITS paper: false-positive rates of the
 * four taint-analysis configurations, plus a breakdown by false-
 * positive class showing *why* each engine's rate lands where it does.
 */

#include <cstdio>
#include <map>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "synth/firmware_gen.hh"

int
main()
{
    using namespace fits;

    std::printf("=== Table 6: false positive rates of taint analysis "
                "techniques ===\n\n");

    const auto corpus = synth::generateStandardCorpus();

    const auto outcomes = eval::CorpusRunner().runTaint(corpus);

    eval::EngineStats karonte, karonteIts, sta, staIts;
    std::size_t filteredSystemData = 0;

    for (std::size_t s = 0; s < corpus.size(); ++s) {
        const auto &fw = corpus[s];
        const auto &outcome = outcomes[s];
        if (!outcome.ok)
            continue;
        karonte += outcome.karonte;
        karonteIts += outcome.karonteIts;
        sta += outcome.sta;
        staIts += outcome.staIts;
        for (const auto &site : fw.truth.sinkSites) {
            if (site.cls == synth::SiteClass::SystemData)
                ++filteredSystemData;
        }
    }

    eval::TablePrinter table(
        {"", "Karonte", "Karonte-ITS", "STA", "STA-ITS"});
    table.addRow({"Alerts", std::to_string(karonte.alerts),
                  std::to_string(karonteIts.alerts),
                  std::to_string(sta.alerts),
                  std::to_string(staIts.alerts)});
    table.addRow({"Bugs", std::to_string(karonte.bugs),
                  std::to_string(karonteIts.bugs),
                  std::to_string(sta.bugs),
                  std::to_string(staIts.bugs)});
    table.addRow({"FP rate",
                  eval::percent(karonte.falsePositiveRate()),
                  eval::percent(karonteIts.falsePositiveRate()),
                  eval::percent(sta.falsePositiveRate()),
                  eval::percent(staIts.falsePositiveRate())});
    table.print();

    std::printf("\nPaper's Table 6: Karonte 35.6%%, Karonte-ITS "
                "34.7%%, STA 77.2%%, STA-ITS 27.9%%.\n");
    std::printf("\nWhy the rates differ (by construction of the "
                "engines):\n"
                "  - STA reports bounds-checked and dead-guard sites "
                "(no path feasibility or\n    constraint modeling): "
                "its FP rate is by far the highest.\n"
                "  - Karonte prunes constant-false guards and treats "
                "range-checked data as\n    constrained, keeping only "
                "escape-style FPs.\n"
                "  - The ITS runs apply the string filter of §4.3: "
                "system-data flows (MAC,\n    subnet mask, ... — %zu "
                "planted sites) are dropped before reporting,\n    "
                "which is why STA-ITS ends up *below* STA despite "
                "issuing more alerts.\n",
                filteredSystemData);

    obs::BenchRecord record("table6_fpr");
    record.add("karonte_fpr", karonte.falsePositiveRate());
    record.add("karonte_its_fpr", karonteIts.falsePositiveRate());
    record.add("sta_fpr", sta.falsePositiveRate());
    record.add("sta_its_fpr", staIts.falsePositiveRate());
    record.add("system_data_sites",
               static_cast<double>(filteredSystemData));
    record.write();
    return 0;
}
