/**
 * @file
 * Reproduces Table 8 of the FITS paper (scoring-metric comparison:
 * Euclidean / Manhattan / Pearson / Cosine) and the §4.5 strategy
 * study: removing the behavior-clustering stage (direct scoring) or
 * replacing it with PCA / standardization / min-max normalization.
 */

#include <cstdio>
#include <vector>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

eval::PrecisionStats
rerank(const std::vector<eval::InferenceOutcome> &outcomes,
       const core::InferConfig &config)
{
    eval::PrecisionStats stats;
    for (const auto &outcome : outcomes) {
        if (!outcome.ok) {
            stats.addRank(-1);
            continue;
        }
        const auto inference = core::inferIts(outcome.behavior,
                                              config);
        stats.addRank(eval::rankOfFirstIts(inference.ranking,
                                           outcome.truth));
    }
    return stats;
}

} // namespace

int
main()
{
    std::printf("=== Table 8: inference results based on different "
                "scoring methods ===\n\n");

    const auto corpus = synth::generateStandardCorpus();
    const auto outcomes = eval::CorpusRunner().runInference(corpus);

    const ml::Metric metrics[4] = {
        ml::Metric::Euclidean, ml::Metric::Manhattan,
        ml::Metric::Pearson, ml::Metric::Cosine};

    eval::TablePrinter table(
        {"", "Euclidean", "Manhattan", "Pearson", "Cosine"});
    std::vector<eval::PrecisionStats> stats(4);
    for (int m = 0; m < 4; ++m) {
        core::InferConfig config;
        config.scoreMetric = metrics[m];
        stats[m] = rerank(outcomes, config);
    }
    table.addRow({"Top-1", eval::percent(stats[0].p1()),
                  eval::percent(stats[1].p1()),
                  eval::percent(stats[2].p1()),
                  eval::percent(stats[3].p1())});
    table.addRow({"Top-2", eval::percent(stats[0].p2()),
                  eval::percent(stats[1].p2()),
                  eval::percent(stats[2].p2()),
                  eval::percent(stats[3].p2())});
    table.addRow({"Top-3", eval::percent(stats[0].p3()),
                  eval::percent(stats[1].p3()),
                  eval::percent(stats[2].p3()),
                  eval::percent(stats[3].p3())});
    table.print();
    std::printf("\nPaper's Table 8: Euclidean 15/25/49%%, Manhattan "
                "20/25/44%%, Pearson 34/50/57%%,\nCosine 47/63/89%% — "
                "cosine wins on every row.\n");

    // ---- strategy study (§4.5) ---------------------------------------
    std::printf("\n=== Candidate-selection strategies (§4.5) ===\n\n");
    const core::CandidateStrategy strategies[5] = {
        core::CandidateStrategy::BehaviorClustering,
        core::CandidateStrategy::DirectScoring,
        core::CandidateStrategy::Pca,
        core::CandidateStrategy::Standardize,
        core::CandidateStrategy::MinMax,
    };
    eval::TablePrinter strat(
        {"Strategy", "Top-1", "Top-2", "Top-3"});
    for (const auto strategy : strategies) {
        core::InferConfig config;
        config.strategy = strategy;
        const auto s = rerank(outcomes, config);
        strat.addRow({core::candidateStrategyName(strategy),
                      eval::percent(s.p1()), eval::percent(s.p2()),
                      eval::percent(s.p3())});
    }
    strat.print();
    std::printf("\nPaper's §4.5: direct scoring reaches only ~5/5/7%% "
                "(a single dominant count\nfeature drowns the rest); "
                "PCA/standardize/normalize stay below 10%% top-3;\n"
                "only the clustering + complexity-filter stage "
                "recovers high precision.\n");

    obs::BenchRecord record("table8_scoring");
    record.add("euclidean_top3", stats[0].p3());
    record.add("manhattan_top3", stats[1].p3());
    record.add("pearson_top3", stats[2].p3());
    record.add("cosine_top1", stats[3].p1());
    record.add("cosine_top2", stats[3].p2());
    record.add("cosine_top3", stats[3].p3());
    record.write();
    return 0;
}
