/**
 * @file
 * Reproduces Table 4 of the FITS paper: detailed ITS-inference results
 * for representative firmware samples — the analyzed binary, its
 * function count, the verified ITS address, and its rank.
 */

#include <cstdio>

#include <map>

#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "obs/bench_record.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

int
main()
{
    using namespace fits;

    std::printf("=== Table 4: partial ITS inference results ===\n\n");

    const auto corpus = synth::generateStandardCorpus();
    const auto outcomes = eval::CorpusRunner().runInference(corpus);

    eval::TablePrinter table({"Vendor", "Firmware", "Binary",
                              "#Functions", "ITS addr.", "Ranking"});

    // Representative picks per vendor: first few successful samples.
    std::map<std::string, int> shown;
    for (std::size_t s = 0; s < corpus.size(); ++s) {
        const auto &fw = corpus[s];
        const auto &outcome = outcomes[s];
        const std::string &vendor = fw.spec.profile.vendor;
        if (shown[vendor] >= 3)
            continue;
        if (!outcome.ok || outcome.firstItsRank < 0)
            continue;
        ++shown[vendor];

        const ir::Addr itsAddr =
            outcome.ranking[static_cast<std::size_t>(
                                outcome.firstItsRank) -
                            1]
                .entry;
        table.addRow({vendor, fw.spec.name, outcome.binaryName,
                      std::to_string(outcome.numFunctions),
                      support::hex(itsAddr),
                      std::to_string(outcome.firstItsRank)});
    }
    table.print();

    std::printf("\nThe ITS address is the verified intermediate taint "
                "source (ground truth);\nRanking is its position in "
                "FITS's output, as in the paper's Table 4.\n");

    obs::BenchRecord record("table4_partial");
    record.add("samples", static_cast<double>(corpus.size()));
    double rows = 0;
    for (const auto &[vendor, count] : shown)
        rows += count;
    record.add("rows_shown", rows);
    record.write();
    return 0;
}
